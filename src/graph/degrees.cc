#include "graph/degrees.h"

#include <algorithm>

namespace tpsl {

StatusOr<DegreeTable> ComputeDegrees(EdgeStream& stream) {
  DegreeTable table;
  Status status = ForEachEdge(stream, [&table](const Edge& e) {
    const VertexId hi = std::max(e.first, e.second);
    if (hi >= table.degrees.size()) {
      table.degrees.resize(static_cast<size_t>(hi) + 1, 0);
    }
    ++table.degrees[e.first];
    ++table.degrees[e.second];
    ++table.num_edges;
  });
  if (!status.ok()) {
    return status;
  }
  return table;
}

}  // namespace tpsl

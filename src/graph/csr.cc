#include "graph/csr.h"

#include <algorithm>

#include "graph/degrees.h"

namespace tpsl {

StatusOr<CsrGraph> CsrGraph::FromStream(EdgeStream& stream) {
  auto degrees_or = ComputeDegrees(stream);
  if (!degrees_or.ok()) {
    return degrees_or.status();
  }
  const DegreeTable& table = *degrees_or;

  CsrGraph graph;
  graph.num_edges_ = table.num_edges;
  const size_t nv = table.degrees.size();
  graph.offsets_.assign(nv + 1, 0);
  for (size_t v = 0; v < nv; ++v) {
    graph.offsets_[v + 1] = graph.offsets_[v] + table.degrees[v];
  }
  graph.adjacency_.resize(graph.offsets_[nv]);

  std::vector<uint64_t> cursor(graph.offsets_.begin(),
                               graph.offsets_.end() - 1);
  Status status = ForEachEdge(stream, [&](const Edge& e) {
    graph.adjacency_[cursor[e.first]++] = e.second;
    graph.adjacency_[cursor[e.second]++] = e.first;
  });
  if (!status.ok()) {
    return status;
  }
  return graph;
}

CsrGraph CsrGraph::FromEdges(const std::vector<Edge>& edges) {
  VertexId max_id = 0;
  for (const Edge& e : edges) {
    max_id = std::max({max_id, e.first, e.second});
  }
  const size_t nv = edges.empty() ? 0 : static_cast<size_t>(max_id) + 1;

  CsrGraph graph;
  graph.num_edges_ = edges.size();
  graph.offsets_.assign(nv + 1, 0);
  for (const Edge& e : edges) {
    ++graph.offsets_[e.first + 1];
    ++graph.offsets_[e.second + 1];
  }
  for (size_t v = 0; v < nv; ++v) {
    graph.offsets_[v + 1] += graph.offsets_[v];
  }
  graph.adjacency_.resize(graph.offsets_[nv]);
  std::vector<uint64_t> cursor(graph.offsets_.begin(),
                               graph.offsets_.end() - 1);
  for (const Edge& e : edges) {
    graph.adjacency_[cursor[e.first]++] = e.second;
    graph.adjacency_[cursor[e.second]++] = e.first;
  }
  return graph;
}

}  // namespace tpsl

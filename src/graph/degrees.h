#ifndef TPSL_GRAPH_DEGREES_H_
#define TPSL_GRAPH_DEGREES_H_

#include <cstdint>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// Vertex-degree table computed in one streaming pass — the "degree
/// calculation" preprocessing step of 2PS-L (paper §III-A2, Fig. 5).
/// Degrees count edge endpoints, so a self-loop contributes 2 to its
/// vertex.
struct DegreeTable {
  std::vector<uint32_t> degrees;  // indexed by VertexId
  uint64_t num_edges = 0;

  /// Number of vertex slots (max seen id + 1).
  VertexId num_vertices() const {
    return static_cast<VertexId>(degrees.size());
  }

  uint32_t degree(VertexId v) const { return degrees[v]; }

  /// Sum of all degrees; equals 2·|E| (the total "volume" of the graph
  /// as used by the clustering phase).
  uint64_t TotalVolume() const { return 2 * num_edges; }
};

/// Streams `stream` once, counting per-vertex degrees. The table grows
/// to the maximum vertex id observed.
StatusOr<DegreeTable> ComputeDegrees(EdgeStream& stream);

}  // namespace tpsl

#endif  // TPSL_GRAPH_DEGREES_H_

#ifndef TPSL_GRAPH_BINARY_EDGE_LIST_H_
#define TPSL_GRAPH_BINARY_EDGE_LIST_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// On-disk format used throughout the paper's evaluation: a raw
/// little-endian sequence of (uint32 first, uint32 second) pairs with
/// no header. File size must be a multiple of 8 bytes.
///
/// WriteBinaryEdgeList / ReadBinaryEdgeList materialize whole files;
/// BinaryFileEdgeStream streams them with a bounded read buffer, which
/// is what the out-of-core partitioners use.
Status WriteBinaryEdgeList(const std::string& path,
                           const std::vector<Edge>& edges);

StatusOr<std::vector<Edge>> ReadBinaryEdgeList(const std::string& path);

/// Buffered, restartable file-backed edge stream. Memory footprint is
/// a single fixed buffer regardless of graph size.
class BinaryFileEdgeStream : public EdgeStream {
 public:
  /// Opens `path` and validates its size. `buffer_edges` controls the
  /// read-buffer size (default 1 MiB of edges).
  static StatusOr<std::unique_ptr<BinaryFileEdgeStream>> Open(
      const std::string& path, size_t buffer_edges = 128 * 1024);

  ~BinaryFileEdgeStream() override;

  BinaryFileEdgeStream(const BinaryFileEdgeStream&) = delete;
  BinaryFileEdgeStream& operator=(const BinaryFileEdgeStream&) = delete;

  Status Reset() override;
  size_t Next(Edge* out, size_t capacity) override;
  uint64_t NumEdgesHint() const override { return num_edges_; }

  /// Sticky I/O state: a read error (ferror) or a file that ends short
  /// of the edge count observed at Open() — e.g. truncated under us —
  /// latches an error here. Next() then returns 0 and Reset() refuses
  /// to restart, so no consumer can mistake a failing file for a
  /// smaller graph.
  Status Health() const override { return status_; }

  /// Raw files read exactly 8 bytes per delivered edge.
  StreamIoStats Io() const override {
    StreamIoStats io;
    io.disk_backed = true;
    io.disk_bytes_this_pass = pass_delivered_ * sizeof(Edge);
    io.disk_bytes_total = total_delivered_ * sizeof(Edge);
    io.passes = passes_;
    return io;
  }

 private:
  BinaryFileEdgeStream(std::FILE* file, uint64_t num_edges,
                       size_t buffer_edges);

  std::FILE* file_;
  uint64_t num_edges_;
  std::vector<Edge> buffer_;
  size_t buffer_filled_ = 0;
  size_t buffer_pos_ = 0;
  /// Edges delivered since the last Reset(); checked against
  /// num_edges_ at EOF to detect truncation fread cannot see.
  uint64_t pass_delivered_ = 0;
  uint64_t total_delivered_ = 0;
  uint64_t passes_ = 0;
  Status status_;
};

}  // namespace tpsl

#endif  // TPSL_GRAPH_BINARY_EDGE_LIST_H_

#include "graph/stats.h"

#include <algorithm>

#include "util/random.h"

namespace tpsl {

DegreeStats ComputeDegreeStats(const std::vector<uint32_t>& degrees) {
  DegreeStats stats;
  if (degrees.empty()) {
    return stats;
  }
  std::vector<uint32_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());

  uint64_t total = 0;
  for (const uint32_t d : sorted) {
    total += d;
  }
  stats.max_degree = sorted.back();
  stats.mean_degree =
      static_cast<double>(total) / static_cast<double>(sorted.size());
  stats.p99_degree = sorted[sorted.size() * 99 / 100];

  // Gini via the sorted-values formula:
  // G = (2 Σ i·x_i) / (n Σ x_i) − (n + 1) / n, with 1-based i.
  if (total > 0) {
    long double weighted = 0;
    for (size_t i = 0; i < sorted.size(); ++i) {
      weighted += static_cast<long double>(i + 1) * sorted[i];
    }
    const long double n = static_cast<long double>(sorted.size());
    stats.gini = static_cast<double>(2.0L * weighted / (n * total) -
                                     (n + 1.0L) / n);
  }
  return stats;
}

double EstimateClusteringCoefficient(const CsrGraph& graph, uint64_t samples,
                                     uint64_t seed) {
  const VertexId n = graph.num_vertices();
  if (n == 0 || samples == 0) {
    return 0.0;
  }
  SplitMix64 rng(seed);
  uint64_t wedges = 0;
  uint64_t closed = 0;
  uint64_t attempts = 0;
  const uint64_t max_attempts = samples * 16;
  while (wedges < samples && attempts < max_attempts) {
    ++attempts;
    const VertexId center = static_cast<VertexId>(rng.NextBounded(n));
    const auto neighbors = graph.neighbors(center);
    if (neighbors.size() < 2) {
      continue;
    }
    const VertexId a = neighbors[rng.NextBounded(neighbors.size())];
    const VertexId b = neighbors[rng.NextBounded(neighbors.size())];
    if (a == b || a == center || b == center) {
      continue;
    }
    ++wedges;
    // Check adjacency on the lower-degree endpoint.
    const VertexId probe = graph.degree(a) <= graph.degree(b) ? a : b;
    const VertexId target = probe == a ? b : a;
    for (const VertexId u : graph.neighbors(probe)) {
      if (u == target) {
        ++closed;
        break;
      }
    }
  }
  return wedges == 0 ? 0.0
                     : static_cast<double>(closed) /
                           static_cast<double>(wedges);
}

}  // namespace tpsl

#ifndef TPSL_GRAPH_IN_MEMORY_EDGE_STREAM_H_
#define TPSL_GRAPH_IN_MEMORY_EDGE_STREAM_H_

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"

namespace tpsl {

/// EdgeStream over an in-memory edge vector. Used by tests, examples,
/// and experiments where the page-cache-resident configuration of the
/// paper is modeled (all data hot in memory).
class InMemoryEdgeStream : public EdgeStream {
 public:
  InMemoryEdgeStream() = default;
  explicit InMemoryEdgeStream(std::vector<Edge> edges)
      : edges_(std::move(edges)) {}

  Status Reset() override {
    position_ = 0;
    return Status::OK();
  }

  size_t Next(Edge* out, size_t capacity) override {
    const size_t n = std::min(capacity, edges_.size() - position_);
    if (n > 0) {
      std::memcpy(out, edges_.data() + position_, n * sizeof(Edge));
      position_ += n;
    }
    return n;
  }

  uint64_t NumEdgesHint() const override { return edges_.size(); }

  const std::vector<Edge>& edges() const { return edges_; }

 private:
  std::vector<Edge> edges_;
  size_t position_ = 0;
};

}  // namespace tpsl

#endif  // TPSL_GRAPH_IN_MEMORY_EDGE_STREAM_H_

#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"

namespace tpsl {
namespace {

/// Runs the R-MAT edge loop, invoking `emit(Edge)` per kept edge. Both
/// public flavors share this so their RNG walk — and therefore their
/// edge sequence — is identical by construction.
template <typename EmitFn>
void RmatEdgeLoop(const RmatConfig& config, EmitFn&& emit) {
  TPSL_CHECK(config.scale > 0 && config.scale < 31);
  TPSL_CHECK(config.a + config.b + config.c <= 1.0 + 1e-9);
  const VertexId n = VertexId{1} << config.scale;
  const uint64_t m = static_cast<uint64_t>(config.edge_factor) * n;
  SplitMix64 rng(config.seed);

  const double ab = config.a + config.b;
  const double abc = config.a + config.b + config.c;
  for (uint64_t i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    for (uint32_t bit = config.scale; bit-- > 0;) {
      const double r = rng.NextDouble();
      // Quadrant choice: a = top-left, b = top-right, c = bottom-left.
      if (r >= ab) {
        u |= VertexId{1} << bit;
        if (r >= abc) {
          v |= VertexId{1} << bit;
        }
      } else if (r >= config.a) {
        v |= VertexId{1} << bit;
      }
    }
    if (config.remove_self_loops && u == v) {
      continue;
    }
    emit(Edge{u, v});
  }
}

template <typename EmitFn>
void ErdosRenyiEdgeLoop(const ErdosRenyiConfig& config, EmitFn&& emit) {
  TPSL_CHECK(config.num_vertices > 1);
  SplitMix64 rng(config.seed);
  for (uint64_t i = 0; i < config.num_edges; ++i) {
    const VertexId u =
        static_cast<VertexId>(rng.NextBounded(config.num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(config.num_vertices));
    if (config.remove_self_loops) {
      while (v == u) {
        v = static_cast<VertexId>(rng.NextBounded(config.num_vertices));
      }
    }
    emit(Edge{u, v});
  }
}

/// Adapts a per-edge emitter into chunk-sink deliveries: accumulates
/// into one bounded buffer and flushes it whenever full. The buffer is
/// the generator's entire memory footprint.
class ChunkBuffer {
 public:
  ChunkBuffer(size_t chunk_edges, const EdgeChunkSink& sink)
      : chunk_edges_(chunk_edges), sink_(sink) {
    TPSL_CHECK(chunk_edges > 0);
    chunk_.reserve(chunk_edges);
  }

  void operator()(const Edge& edge) {
    chunk_.push_back(edge);
    // Compare against the requested bound, not capacity(): reserve()
    // may over-allocate, and the contract is chunks <= chunk_edges.
    if (chunk_.size() == chunk_edges_) {
      Flush();
    }
  }

  void Flush() {
    if (!chunk_.empty()) {
      sink_(chunk_.data(), chunk_.size());
      chunk_.clear();
    }
  }

 private:
  const size_t chunk_edges_;
  const EdgeChunkSink& sink_;
  std::vector<Edge> chunk_;
};

}  // namespace

std::vector<Edge> GenerateRmat(const RmatConfig& config) {
  TPSL_CHECK(config.scale > 0 && config.scale < 31);
  std::vector<Edge> edges;
  edges.reserve(static_cast<uint64_t>(config.edge_factor)
                << config.scale);
  RmatEdgeLoop(config, [&](const Edge& e) { edges.push_back(e); });
  if (config.deduplicate) {
    DeduplicateUndirected(&edges);
    ShuffleEdges(&edges, config.seed + 1);
  }
  return edges;
}

void GenerateRmatChunked(const RmatConfig& config, size_t chunk_edges,
                         const EdgeChunkSink& sink) {
  ChunkBuffer buffer(chunk_edges, sink);
  RmatEdgeLoop(config, [&](const Edge& e) { buffer(e); });
  buffer.Flush();
}

std::vector<Edge> GenerateErdosRenyi(const ErdosRenyiConfig& config) {
  std::vector<Edge> edges;
  edges.reserve(config.num_edges);
  ErdosRenyiEdgeLoop(config, [&](const Edge& e) { edges.push_back(e); });
  return edges;
}

void GenerateErdosRenyiChunked(const ErdosRenyiConfig& config,
                               size_t chunk_edges, const EdgeChunkSink& sink) {
  ChunkBuffer buffer(chunk_edges, sink);
  ErdosRenyiEdgeLoop(config, [&](const Edge& e) { buffer(e); });
  buffer.Flush();
}

std::vector<Edge> GenerateBarabasiAlbert(const BarabasiAlbertConfig& config) {
  TPSL_CHECK(config.attachment > 0);
  TPSL_CHECK(config.num_vertices > config.attachment);
  SplitMix64 rng(config.seed);

  // Endpoint list doubles as the preferential-attachment sampler: a
  // vertex appears once per incident edge, so sampling a uniform entry
  // samples proportionally to degree.
  std::vector<VertexId> endpoints;
  const uint64_t expected_edges =
      static_cast<uint64_t>(config.num_vertices) * config.attachment;
  endpoints.reserve(2 * expected_edges);

  std::vector<Edge> edges;
  edges.reserve(expected_edges);

  // Seed clique over the first `attachment + 1` vertices.
  const VertexId seed_n = config.attachment + 1;
  for (VertexId u = 0; u < seed_n; ++u) {
    for (VertexId v = u + 1; v < seed_n; ++v) {
      edges.push_back(Edge{u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  for (VertexId u = seed_n; u < config.num_vertices; ++u) {
    for (uint32_t j = 0; j < config.attachment; ++j) {
      const VertexId v = endpoints[rng.NextBounded(endpoints.size())];
      edges.push_back(Edge{u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return edges;
}

namespace {

template <typename EmitFn>
void PlantedPartitionEdgeLoop(const PlantedPartitionConfig& config,
                              EmitFn&& emit) {
  TPSL_CHECK(config.num_communities > 1);
  TPSL_CHECK(config.num_vertices >= config.num_communities);
  TPSL_CHECK(config.intra_fraction >= 0.0 && config.intra_fraction <= 1.0);
  SplitMix64 rng(config.seed);

  // Zipf-distributed community sizes: weight(i) = 1 / (i+1)^skew.
  std::vector<double> weights(config.num_communities);
  for (uint32_t i = 0; i < config.num_communities; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i) + 1.0, config.size_skew);
  }
  const double total_weight =
      std::accumulate(weights.begin(), weights.end(), 0.0);

  // Assign contiguous vertex ranges to communities. Every community
  // gets at least 2 vertices so that intra edges are well defined.
  std::vector<VertexId> community_start(config.num_communities + 1, 0);
  VertexId assigned = 0;
  for (uint32_t i = 0; i < config.num_communities; ++i) {
    community_start[i] = assigned;
    const VertexId remaining_communities = config.num_communities - i;
    VertexId size = static_cast<VertexId>(
        std::max(2.0, config.num_vertices * weights[i] / total_weight));
    const VertexId remaining_vertices = config.num_vertices - assigned;
    // Never starve later communities of their 2-vertex minimum.
    size = std::min(size, remaining_vertices - 2 * (remaining_communities - 1));
    size = std::max<VertexId>(size, 2);
    assigned += size;
  }
  community_start[config.num_communities] = config.num_vertices;

  for (uint64_t i = 0; i < config.num_edges; ++i) {
    const bool intra = rng.NextDouble() < config.intra_fraction;
    VertexId u, v;
    if (intra) {
      // Pick a community proportionally to size so per-vertex degree
      // stays roughly uniform across communities.
      const VertexId anchor =
          static_cast<VertexId>(rng.NextBounded(config.num_vertices));
      const uint32_t c = static_cast<uint32_t>(
          std::upper_bound(community_start.begin(),
                           community_start.begin() + config.num_communities +
                               1,
                           anchor) -
          community_start.begin() - 1);
      const VertexId lo = community_start[c];
      const VertexId size = community_start[c + 1] - lo;
      u = lo + static_cast<VertexId>(rng.NextBounded(size));
      v = lo + static_cast<VertexId>(rng.NextBounded(size));
    } else {
      u = static_cast<VertexId>(rng.NextBounded(config.num_vertices));
      v = static_cast<VertexId>(rng.NextBounded(config.num_vertices));
    }
    if (config.remove_self_loops && u == v) {
      v = (v + 1 == config.num_vertices) ? 0 : v + 1;
    }
    emit(Edge{u, v});
  }
}

}  // namespace

std::vector<Edge> GeneratePlantedPartition(
    const PlantedPartitionConfig& config) {
  std::vector<Edge> edges;
  edges.reserve(config.num_edges);
  PlantedPartitionEdgeLoop(config, [&](const Edge& e) { edges.push_back(e); });
  return edges;
}

void GeneratePlantedPartitionChunked(const PlantedPartitionConfig& config,
                                     size_t chunk_edges,
                                     const EdgeChunkSink& sink) {
  ChunkBuffer buffer(chunk_edges, sink);
  PlantedPartitionEdgeLoop(config, [&](const Edge& e) { buffer(e); });
  buffer.Flush();
}

std::vector<Edge> GenerateSocialNetwork(const SocialNetworkConfig& config) {
  TPSL_CHECK(config.clique_size >= 3);
  TPSL_CHECK(config.num_vertices >= config.clique_size);
  TPSL_CHECK(config.rewire_prob >= 0.0 && config.rewire_prob <= 1.0);
  TPSL_CHECK(config.hub_fraction >= 0.0);
  SplitMix64 rng(config.seed);

  const VertexId n = config.num_vertices;
  const uint32_t c = config.clique_size;
  std::vector<Edge> edges;
  edges.reserve(static_cast<uint64_t>(n) * (c - 1) / 2 *
                (1.0 + config.hub_fraction) + 16);

  // Friend circles: contiguous cliques with per-edge rewiring.
  for (VertexId base = 0; base + c <= n; base += c) {
    for (uint32_t i = 0; i < c; ++i) {
      for (uint32_t j = i + 1; j < c; ++j) {
        const VertexId u = base + i;
        VertexId v = base + j;
        if (rng.NextDouble() < config.rewire_prob) {
          v = static_cast<VertexId>(rng.NextBounded(n));
        }
        if (u != v) {
          edges.push_back(Edge{u, v});
        }
      }
    }
  }

  // Hub overlay: one endpoint uniform, the other power-law-skewed
  // toward low ids (the global celebrities).
  const uint64_t hub_edges =
      static_cast<uint64_t>(config.hub_fraction * edges.size());
  for (uint64_t i = 0; i < hub_edges; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId v = static_cast<VertexId>(
        static_cast<double>(n) *
        std::pow(rng.NextDouble(), config.hub_skew));
    if (u != v && v < n) {
      edges.push_back(Edge{u, v});
    }
  }

  // Social edge dumps have no meaningful global order; shuffle so that
  // streaming algorithms cannot rely on clique contiguity.
  ShuffleEdges(&edges, config.seed + 1);
  return edges;
}

void RemoveSelfLoops(std::vector<Edge>* edges) {
  edges->erase(std::remove_if(edges->begin(), edges->end(),
                              [](const Edge& e) { return e.first == e.second; }),
               edges->end());
}

void DeduplicateUndirected(std::vector<Edge>* edges) {
  for (Edge& e : *edges) {
    if (e.first > e.second) {
      std::swap(e.first, e.second);
    }
  }
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
}

void ShuffleEdges(std::vector<Edge>* edges, uint64_t seed) {
  SplitMix64 rng(seed);
  for (size_t i = edges->size(); i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap((*edges)[i - 1], (*edges)[j]);
  }
}

}  // namespace tpsl

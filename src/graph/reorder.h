#ifndef TPSL_GRAPH_REORDER_H_
#define TPSL_GRAPH_REORDER_H_

#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// Vertex relabeling utilities. Real-world graph dumps differ wildly
/// in id locality (WebGraph crawls are near-BFS ordered, which is why
/// web graphs cluster so well; Gemini exploits the same property), so
/// experiments on ordering sensitivity need controlled relabelings.
///
/// All functions return a permutation `new_id[old_id]` over
/// [0, num_vertices) and leave the edge list untouched; apply it with
/// RelabelEdges.

/// BFS order from the lowest-id vertex of each component: neighbors
/// receive consecutive ids — maximal locality.
std::vector<VertexId> BfsOrder(const CsrGraph& graph);

/// Descending-degree order: hubs get the smallest ids (the layout of
/// many social-network dumps).
std::vector<VertexId> DegreeOrder(const CsrGraph& graph);

/// Random permutation — destroys all id locality.
std::vector<VertexId> RandomOrder(VertexId num_vertices, uint64_t seed);

/// Applies a permutation in place. Every edge endpoint must be covered
/// by the permutation.
Status RelabelEdges(const std::vector<VertexId>& new_id,
                    std::vector<Edge>* edges);

}  // namespace tpsl

#endif  // TPSL_GRAPH_REORDER_H_

#ifndef TPSL_GRAPH_DATASETS_H_
#define TPSL_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// Named, laptop-scale stand-ins for the paper's evaluation graphs
/// (Table III). Each entry maps a paper dataset to a deterministic
/// generator configuration that preserves its qualitative character:
///
///   OK  (com-orkut, social)      -> R-MAT, heavy skew, hard to partition
///   WI  (wikipedia, social/info) -> R-MAT, moderate skew
///   IT  (it-2004, web)           -> planted partition, strong communities
///   TW  (twitter-2010, social)   -> R-MAT, extreme skew
///   FR  (com-friendster, social) -> R-MAT, low clustering
///   UK  (uk-2007-05, web)        -> planted partition
///   GSH (gsh-2015, web)          -> planted partition, many communities
///   WDC (wdc-2014, web)          -> planted partition, many communities
///
/// Scaled sizes keep every experiment runnable in seconds while
/// retaining the paper's ordering |OK| < |IT| < |TW| < |FR| < |UK| <
/// |GSH| < |WDC|.
struct DatasetSpec {
  std::string name;        // short code used in the paper's plots
  std::string paper_name;  // full dataset name in the paper
  enum class Kind { kSocial, kWeb } kind;
};

/// All seven graphs from paper Table III, in paper order.
const std::vector<DatasetSpec>& AllDatasets();

/// The four graphs used in the paper's re-streaming / 2PS-HDRF studies
/// (Figs. 7-9): OK, IT, TW, FR.
const std::vector<DatasetSpec>& RestreamingStudyDatasets();

/// Materializes the named dataset (edge list). `scale_shift` uniformly
/// shrinks (>0) or grows (<0 not supported) every dataset, for quick
/// smoke runs; 0 = default benchmark size.
StatusOr<std::vector<Edge>> LoadDataset(const std::string& name,
                                        int scale_shift = 0);

}  // namespace tpsl

#endif  // TPSL_GRAPH_DATASETS_H_

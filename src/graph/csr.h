#ifndef TPSL_GRAPH_CSR_H_
#define TPSL_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_stream.h"
#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// Compressed-sparse-row adjacency for an undirected graph. Each edge
/// (u, v) appears in both adjacency lists. This is the in-memory
/// materialization that the paper's in-memory baselines (NE, DNE,
/// METIS) require — by definition O(|E|) space, which is exactly what
/// the out-of-core partitioners avoid.
class CsrGraph {
 public:
  /// Builds adjacency from one pass over `edges` (two passes over the
  /// stream: degree count + fill).
  static StatusOr<CsrGraph> FromStream(EdgeStream& stream);
  static CsrGraph FromEdges(const std::vector<Edge>& edges);

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }
  uint64_t num_edges() const { return num_edges_; }

  uint32_t degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, with multiplicity; a self-loop appears twice.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Bytes of heap memory held by the structure (for the space
  /// accounting in Table II experiments).
  uint64_t HeapBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           adjacency_.size() * sizeof(VertexId);
  }

 private:
  CsrGraph() = default;

  std::vector<uint64_t> offsets_;  // size num_vertices + 1
  std::vector<VertexId> adjacency_;
  uint64_t num_edges_ = 0;
};

}  // namespace tpsl

#endif  // TPSL_GRAPH_CSR_H_

#ifndef TPSL_GRAPH_TYPES_H_
#define TPSL_GRAPH_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>

namespace tpsl {

/// Vertex identifier. The paper's binary edge-list format uses 32-bit
/// IDs; we keep that width and use 64-bit types only for counts.
using VertexId = uint32_t;

/// Partition identifier in [0, k).
using PartitionId = uint32_t;

/// Cluster identifier produced by the streaming clustering phase.
using ClusterId = uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();
inline constexpr ClusterId kInvalidCluster =
    std::numeric_limits<ClusterId>::max();

/// An undirected edge. Streams deliver edges in file order; algorithms
/// must not assume any normalization of (first, second).
struct Edge {
  VertexId first = 0;
  VertexId second = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.first == b.first && a.second == b.second;
  }
  friend bool operator!=(const Edge& a, const Edge& b) { return !(a == b); }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  }
};

static_assert(sizeof(Edge) == 8, "Edge must match the on-disk layout");

}  // namespace tpsl

template <>
struct std::hash<tpsl::Edge> {
  size_t operator()(const tpsl::Edge& e) const {
    return (static_cast<uint64_t>(e.first) << 32) | e.second;
  }
};

#endif  // TPSL_GRAPH_TYPES_H_

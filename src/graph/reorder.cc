#include "graph/reorder.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/random.h"

namespace tpsl {

std::vector<VertexId> BfsOrder(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> new_id(n, kInvalidVertex);
  VertexId next = 0;
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < n; ++root) {
    if (new_id[root] != kInvalidVertex) {
      continue;
    }
    new_id[root] = next++;
    queue.push_back(root);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (const VertexId u : graph.neighbors(v)) {
        if (new_id[u] == kInvalidVertex) {
          new_id[u] = next++;
          queue.push_back(u);
        }
      }
    }
  }
  return new_id;
}

std::vector<VertexId> DegreeOrder(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&graph](VertexId a, VertexId b) {
                     return graph.degree(a) > graph.degree(b);
                   });
  std::vector<VertexId> new_id(n);
  for (VertexId rank = 0; rank < n; ++rank) {
    new_id[by_degree[rank]] = rank;
  }
  return new_id;
}

std::vector<VertexId> RandomOrder(VertexId num_vertices, uint64_t seed) {
  std::vector<VertexId> new_id(num_vertices);
  std::iota(new_id.begin(), new_id.end(), 0);
  SplitMix64 rng(seed);
  for (size_t i = new_id.size(); i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(new_id[i - 1], new_id[j]);
  }
  return new_id;
}

Status RelabelEdges(const std::vector<VertexId>& new_id,
                    std::vector<Edge>* edges) {
  for (Edge& e : *edges) {
    if (e.first >= new_id.size() || e.second >= new_id.size()) {
      return Status::OutOfRange("edge endpoint outside permutation");
    }
    e.first = new_id[e.first];
    e.second = new_id[e.second];
  }
  return Status::OK();
}

}  // namespace tpsl

#ifndef TPSL_GRAPH_TEXT_EDGE_LIST_H_
#define TPSL_GRAPH_TEXT_EDGE_LIST_H_

#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// ASCII edge-list interchange format (one "u v" pair per line, '#' or
/// '%' comment lines skipped), compatible with SNAP / KONECT dataset
/// dumps. Some of the paper's baselines (METIS, DNE, ADWISE) ingest
/// this format; we support it for interoperability and tooling.
Status WriteTextEdgeList(const std::string& path,
                         const std::vector<Edge>& edges);

StatusOr<std::vector<Edge>> ReadTextEdgeList(const std::string& path);

}  // namespace tpsl

#endif  // TPSL_GRAPH_TEXT_EDGE_LIST_H_

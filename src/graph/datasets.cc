#include "graph/datasets.h"

#include <algorithm>

#include "graph/generators.h"

namespace tpsl {
namespace {

/// Which generator models a dataset. Real social networks (OK, WI, FR)
/// combine degree skew with community structure; TW is modeled as pure
/// R-MAT (extreme skew, weak communities — the one graph in the paper
/// where 2PS-L does not beat DBH); web graphs are planted partitions
/// with strong locality.
enum class Generator { kSocialCommunity, kRmat, kWeb };

struct GeneratorEntry {
  DatasetSpec spec;
  Generator generator;
  uint32_t scale;  // |V| = 2^scale at scale_shift 0
  // kRmat parameters.
  uint32_t edge_factor;
  double rmat_a;
  // kSocialCommunity (caveman + hubs) parameters.
  uint32_t clique_size;
  double rewire_prob;
  double hub_fraction;
  // kWeb (planted partition) parameters.
  double intra_fraction;
  uint32_t communities;
  uint64_t seed;
};

const std::vector<GeneratorEntry>& Registry() {
  // Sizes follow the paper's Table III ordering at ~1/1000 scale:
  // |E|: OK ~240k < WI ~380k < IT 1.3M < TW ~1.5M < FR ~1.8M < UK 2.1M
  //      < GSH 4.2M < WDC 5.2M.
  static const std::vector<GeneratorEntry>* entries =
      new std::vector<GeneratorEntry>{
          {{"OK", "com-orkut", DatasetSpec::Kind::kSocial},
           Generator::kSocialCommunity, 15, 0, 0, 12, 0.12, 0.35, 0, 0,
           0x0411},
          {{"WI", "wikipedia-link", DatasetSpec::Kind::kSocial},
           Generator::kSocialCommunity, 16, 0, 0, 10, 0.18, 0.30, 0, 0,
           0x0412},
          {{"IT", "it-2004", DatasetSpec::Kind::kWeb},
           Generator::kWeb, 17, 10, 0, 0, 0, 0, 0.96, 1 << 13, 0x0413},
          {{"TW", "twitter-2010", DatasetSpec::Kind::kSocial},
           Generator::kRmat, 17, 12, 0.60, 0, 0, 0, 0, 0, 0x0414},
          {{"FR", "com-friendster", DatasetSpec::Kind::kSocial},
           Generator::kSocialCommunity, 18, 0, 0, 12, 0.22, 0.25, 0, 0,
           0x0415},
          {{"UK", "uk-2007-05", DatasetSpec::Kind::kWeb},
           Generator::kWeb, 18, 8, 0, 0, 0, 0, 0.95, 1 << 14, 0x0416},
          {{"GSH", "gsh-2015", DatasetSpec::Kind::kWeb},
           Generator::kWeb, 19, 8, 0, 0, 0, 0, 0.94, 1 << 14, 0x0417},
          {{"WDC", "wdc-2014", DatasetSpec::Kind::kWeb},
           Generator::kWeb, 19, 10, 0, 0, 0, 0, 0.93, 1 << 14, 0x0418},
      };
  return *entries;
}

std::vector<Edge> Materialize(const GeneratorEntry& entry, int scale_shift) {
  const uint32_t scale =
      entry.scale > static_cast<uint32_t>(scale_shift)
          ? entry.scale - static_cast<uint32_t>(scale_shift)
          : 10;
  switch (entry.generator) {
    case Generator::kRmat: {
      RmatConfig config;
      config.scale = scale;
      config.edge_factor = entry.edge_factor;
      config.a = entry.rmat_a;
      config.b = (1.0 - entry.rmat_a) / 3.0;
      config.c = (1.0 - entry.rmat_a) / 3.0;
      config.seed = entry.seed;
      return GenerateRmat(config);
    }
    case Generator::kSocialCommunity: {
      SocialNetworkConfig config;
      config.num_vertices = VertexId{1} << scale;
      config.clique_size = entry.clique_size;
      config.rewire_prob = entry.rewire_prob;
      config.hub_fraction = entry.hub_fraction;
      config.seed = entry.seed;
      return GenerateSocialNetwork(config);
    }
    case Generator::kWeb: {
      PlantedPartitionConfig config;
      config.num_vertices = VertexId{1} << scale;
      config.num_edges = static_cast<uint64_t>(entry.edge_factor) << scale;
      config.num_communities =
          std::max<uint32_t>(16, entry.communities >> scale_shift);
      config.intra_fraction = entry.intra_fraction;
      // Web hosts are small and dense; moderate size tail.
      config.size_skew = 1.0;
      config.seed = entry.seed;
      return GeneratePlantedPartition(config);
    }
  }
  return {};
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* specs = [] {
    auto* v = new std::vector<DatasetSpec>();
    for (const GeneratorEntry& entry : Registry()) {
      if (entry.spec.name != "WI") {  // WI only appears in Table IV
        v->push_back(entry.spec);
      }
    }
    return v;
  }();
  return *specs;
}

const std::vector<DatasetSpec>& RestreamingStudyDatasets() {
  static const std::vector<DatasetSpec>* specs = [] {
    auto* v = new std::vector<DatasetSpec>();
    for (const GeneratorEntry& entry : Registry()) {
      const std::string& n = entry.spec.name;
      if (n == "OK" || n == "IT" || n == "TW" || n == "FR") {
        v->push_back(entry.spec);
      }
    }
    return v;
  }();
  return *specs;
}

StatusOr<std::vector<Edge>> LoadDataset(const std::string& name,
                                        int scale_shift) {
  if (scale_shift < 0) {
    return Status::InvalidArgument("scale_shift must be >= 0");
  }
  for (const GeneratorEntry& entry : Registry()) {
    if (entry.spec.name == name) {
      return Materialize(entry, scale_shift);
    }
  }
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace tpsl

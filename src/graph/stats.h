#ifndef TPSL_GRAPH_STATS_H_
#define TPSL_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace tpsl {

/// Structural statistics used to validate that the synthetic dataset
/// stand-ins actually exhibit the properties the substitution argument
/// relies on (DESIGN.md §4): degree skew for social graphs, local
/// density (triangles) for community graphs.
struct DegreeStats {
  uint32_t max_degree = 0;
  double mean_degree = 0.0;
  /// 99th-percentile degree.
  uint32_t p99_degree = 0;
  /// Gini coefficient of the degree distribution in [0, 1); higher =
  /// more skew (power-law graphs are typically > 0.5).
  double gini = 0.0;
};

DegreeStats ComputeDegreeStats(const std::vector<uint32_t>& degrees);

/// Monte-Carlo estimate of the global clustering coefficient: sample
/// `samples` wedges (u, v, w) with v the center and test whether (u,
/// w) closes a triangle. Deterministic in the seed.
double EstimateClusteringCoefficient(const CsrGraph& graph, uint64_t samples,
                                     uint64_t seed);

}  // namespace tpsl

#endif  // TPSL_GRAPH_STATS_H_

#ifndef TPSL_GRAPH_GENERATORS_H_
#define TPSL_GRAPH_GENERATORS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace tpsl {

/// Deterministic synthetic graph generators. These stand in for the
/// paper's public datasets (OK/IT/TW/FR/UK/GSH/WDC), which are not
/// available offline; see DESIGN.md §4 for the substitution argument.
/// All generators are pure functions of their config (seed included).
///
/// The R-MAT, Erdős–Rényi and planted-partition generators draw each
/// edge independently, so they come in two flavors: the classic
/// materializing form (std::vector<Edge>) and a chunk-callback form
/// that emits consecutive runs of edges through an EdgeChunkSink with
/// memory bounded by the chunk size. Both flavors walk the same RNG
/// sequence, so for identical configs they produce identical edge
/// streams — the out-of-core ingest layer (src/ingest) relies on that
/// equivalence to generate multi-GB datasets straight to disk.
/// Barabási–Albert and the social-network generator are inherently
/// materializing (preferential attachment keeps an O(|E|) endpoint
/// list; the social generator globally shuffles) and only exist in
/// vector form.

/// Receives consecutive chunks of generated edges in stream order.
/// The pointed-to array is only valid for the duration of the call.
using EdgeChunkSink = std::function<void(const Edge* edges, size_t count)>;

/// R-MAT (recursive matrix) generator — produces the power-law degree
/// skew characteristic of social networks (OK, TW, FR). Standard
/// Graph500 parameters are a=0.57, b=0.19, c=0.19.
struct RmatConfig {
  uint32_t scale = 16;           // |V| = 2^scale
  uint32_t edge_factor = 16;     // |E| = edge_factor * |V|
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 1;
  bool remove_self_loops = true;
  bool deduplicate = false;      // real edge lists keep multi-edges
};

std::vector<Edge> GenerateRmat(const RmatConfig& config);

/// Chunked R-MAT: emits the same edge sequence as GenerateRmat through
/// `sink` in chunks of at most `chunk_edges`, holding only one chunk in
/// memory. `config.deduplicate` is ignored (deduplication requires the
/// full edge set; use the materializing form for that).
void GenerateRmatChunked(const RmatConfig& config, size_t chunk_edges,
                         const EdgeChunkSink& sink);

/// Erdős–Rényi G(n, m): m uniform random edges. No skew, no community
/// structure — the adversarial case for clustering-based partitioning.
struct ErdosRenyiConfig {
  VertexId num_vertices = 1 << 16;
  uint64_t num_edges = 1 << 20;
  uint64_t seed = 1;
  bool remove_self_loops = true;
};

std::vector<Edge> GenerateErdosRenyi(const ErdosRenyiConfig& config);

/// Chunked Erdős–Rényi: identical edge sequence, bounded memory.
void GenerateErdosRenyiChunked(const ErdosRenyiConfig& config,
                               size_t chunk_edges, const EdgeChunkSink& sink);

/// Barabási–Albert preferential attachment: power-law degrees with a
/// strict lower bound (every vertex has degree >= attachment).
struct BarabasiAlbertConfig {
  VertexId num_vertices = 1 << 16;
  uint32_t attachment = 8;  // edges added per new vertex
  uint64_t seed = 1;
};

std::vector<Edge> GenerateBarabasiAlbert(const BarabasiAlbertConfig& config);

/// Planted-partition ("stochastic block") generator with power-law
/// community sizes — models web graphs (IT, UK, GSH, WDC): strong
/// locality / community structure, where most edges are intra-cluster.
/// `intra_fraction` is the expected fraction of intra-community edges.
struct PlantedPartitionConfig {
  VertexId num_vertices = 1 << 16;
  uint64_t num_edges = 1 << 20;
  uint32_t num_communities = 256;
  double intra_fraction = 0.95;
  double size_skew = 1.5;  // community-size Zipf exponent
  uint64_t seed = 1;
  bool remove_self_loops = true;
};

std::vector<Edge> GeneratePlantedPartition(const PlantedPartitionConfig& config);

/// Chunked planted partition: identical edge sequence, bounded memory
/// (the community-range table is O(num_communities), not O(|E|)).
void GeneratePlantedPartitionChunked(const PlantedPartitionConfig& config,
                                     size_t chunk_edges,
                                     const EdgeChunkSink& sink);

/// Social-network generator: a relaxed caveman graph plus a hub layer.
/// Real social graphs (OK, FR, WI) are locally dense (friend circles =
/// near-cliques, high clustering coefficient) with a global power-law
/// hub overlay. Vertices are grouped into cliques of `clique_size`;
/// each clique edge is rewired to a random global endpoint with
/// probability `rewire_prob`; finally `hub_fraction`·|E| extra edges
/// connect random vertices to globally popular low-id hubs.
struct SocialNetworkConfig {
  VertexId num_vertices = 1 << 16;
  /// Friend-circle size; clique edges dominate the graph.
  uint32_t clique_size = 12;
  /// Fraction of clique edges rewired to random endpoints (community
  /// "noise"; social networks are noisier than web graphs).
  double rewire_prob = 0.15;
  /// Extra hub edges as a fraction of the clique edge count.
  double hub_fraction = 0.3;
  /// Hub endpoint = floor(n · u^hub_skew): larger = heavier skew.
  double hub_skew = 3.0;
  uint64_t seed = 1;
};

std::vector<Edge> GenerateSocialNetwork(const SocialNetworkConfig& config);

/// In-place cleanup helpers used by generators and data tooling.
void RemoveSelfLoops(std::vector<Edge>* edges);
/// Removes duplicates treating (u,v) and (v,u) as the same edge.
/// Sorts the edge list as a side effect.
void DeduplicateUndirected(std::vector<Edge>* edges);
/// Randomly permutes edge order (stream order matters for streaming
/// partitioners; the paper streams in file order).
void ShuffleEdges(std::vector<Edge>* edges, uint64_t seed);

}  // namespace tpsl

#endif  // TPSL_GRAPH_GENERATORS_H_

// Extension experiment: sensitivity of streaming partitioners to the
// edge stream order (the paper's related work cites Awadelkarim &
// Ugander, KDD'20 on stream-order effects). Compares random shuffle,
// source-sorted (the order of SNAP/WebGraph dumps), and adversarial
// reverse-sorted order for 2PS-L, HDRF and Greedy on the OK config.
#include <algorithm>
#include <cstdio>

#include "benchkit/measure.h"

int main() {
  const int shift = tpsl::benchkit::ScaleShift(2);
  auto edges_or = tpsl::LoadDataset("OK", shift);
  if (!edges_or.ok()) {
    std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
    return 1;
  }

  tpsl::benchkit::PrintHeader("Extension: stream-order sensitivity (OK, k=32)");
  std::printf("%-10s %14s %14s %14s\n", "method", "shuffled", "sorted",
              "reversed");

  std::vector<tpsl::Edge> shuffled = *edges_or;  // generator shuffles
  std::vector<tpsl::Edge> sorted = *edges_or;
  std::sort(sorted.begin(), sorted.end());
  std::vector<tpsl::Edge> reversed = sorted;
  std::reverse(reversed.begin(), reversed.end());

  for (const char* name : {"2PS-L", "HDRF", "Greedy", "DBH"}) {
    double rf[3];
    const std::vector<tpsl::Edge>* orders[3] = {&shuffled, &sorted,
                                                &reversed};
    for (int i = 0; i < 3; ++i) {
      auto m = tpsl::benchkit::MeasureOnEdges(name, "OK", *orders[i], 32);
      if (!m.ok()) {
        std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
        return 1;
      }
      rf[i] = m->replication_factor;
    }
    std::printf("%-10s %14.3f %14.3f %14.3f\n", name, rf[0], rf[1], rf[2]);
  }
  std::printf(
      "\nExpected: DBH is order-invariant (pure hashing); the stateful "
      "partitioners shift by a few percent across orders — 2PS-L's "
      "preprocessing makes it comparatively order-robust.\n");
  return 0;
}

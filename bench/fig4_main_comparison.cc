// Reproduces paper Fig. 4: replication factor, run-time and memory
// (state bytes) for every dataset of Table III across the full
// partitioner roster at k ∈ {4, 32, 128, 256}.
//
// As in the paper, ADWISE is evaluated only on the smaller graphs (its
// buffered scoring is too slow beyond that), and the heavyweight
// in-memory baselines (NE, METIS*) are skipped on the two largest web
// graphs, mirroring the paper's FAIL/OOM entries at the original
// scale.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "benchkit/measure.h"

namespace {

bool RunsOn(const std::string& partitioner, const std::string& dataset) {
  const bool small_graph =
      dataset == "OK" || dataset == "IT" || dataset == "TW";
  const bool huge_graph = dataset == "GSH" || dataset == "WDC";
  if (partitioner == "ADWISE") {
    return small_graph;
  }
  if (partitioner == "NE" || partitioner == "METIS*" ||
      partitioner == "SNE" || partitioner == "DNE") {
    return !huge_graph;  // paper: SNE/NE FAIL, DNE OOM on big graphs
  }
  return true;
}

}  // namespace

int main() {
  using tpsl::benchkit::Measure;
  const int shift = tpsl::benchkit::ScaleShift(2);

  tpsl::benchkit::PrintHeader("Fig. 4: main comparison (all graphs)");
  tpsl::benchkit::PrintRowHeader();
  for (const tpsl::DatasetSpec& spec : tpsl::AllDatasets()) {
    for (const uint32_t k : {4u, 32u, 128u, 256u}) {
      for (const std::string& name : tpsl::Fig4PartitionerNames()) {
        if (!RunsOn(name, spec.name)) {
          continue;
        }
        auto m = Measure(name, spec.name, k, shift);
        if (!m.ok()) {
          std::fprintf(stderr, "%s on %s k=%u failed: %s\n", name.c_str(),
                       spec.name.c_str(), k, m.status().ToString().c_str());
          return 1;
        }
        tpsl::benchkit::PrintRow(*m);
      }
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape checks: (1) 2PS-L time is flat in k and below every "
      "other stateful partitioner at k>=128;\n(2) 2PS-L rf < HDRF rf on "
      "most graphs; (3) in-memory partitioners (NE, METIS*) reach the "
      "best rf at the highest time/state cost;\n(4) DBH is fastest with "
      "the worst rf.\n");
  return 0;
}

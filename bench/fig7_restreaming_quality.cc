// Reproduces paper Fig. 7: replication factor (normalized to
// single-pass clustering) vs the number of streaming clustering passes
// (1..8) at k = 32 on OK, IT, TW, FR. Paper: re-streaming improves RF
// by up to ~3.5%.
#include <cstdio>
#include <vector>

#include "benchkit/measure.h"
#include "core/two_phase_partitioner.h"
#include "graph/in_memory_edge_stream.h"

int main() {
  const int shift = tpsl::benchkit::ScaleShift(2);

  tpsl::benchkit::PrintHeader("Fig. 7: normalized rf vs clustering passes, k=32");
  std::printf("%-8s", "dataset");
  for (int pass = 1; pass <= 8; ++pass) {
    std::printf(" %8s%d", "pass", pass);
  }
  std::printf("\n");

  for (const tpsl::DatasetSpec& spec : tpsl::RestreamingStudyDatasets()) {
    auto edges_or = tpsl::LoadDataset(spec.name, shift);
    if (!edges_or.ok()) {
      std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s", spec.name.c_str());
    double baseline = 0;
    for (uint32_t passes = 1; passes <= 8; ++passes) {
      tpsl::TwoPhasePartitioner::Options options;
      options.clustering.num_passes = passes;
      tpsl::TwoPhasePartitioner partitioner(options);
      tpsl::InMemoryEdgeStream stream(*edges_or);
      tpsl::PartitionConfig config;
      config.num_partitions = 32;
      auto result = tpsl::RunPartitioner(partitioner, stream, config);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const double rf = result->quality.replication_factor;
      if (passes == 1) {
        baseline = rf;
      }
      std::printf(" %9.4f", rf / baseline);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: values <= ~1.0, small gains (a few percent) "
      "from re-streaming.\n");
  return 0;
}

// Ablation study of the 2PS-L design choices called out in DESIGN.md:
//   1. cluster volume cap factor (the paper mandates a cap but leaves
//      its value open),
//   2. Graham LPT scheduling vs naive round-robin cluster mapping,
//   3. the cluster-volume term of the scoring function,
//   4. enforcing the volume cap at all (original Hollocou behaviour).
// Run on one social (OK) and one web (UK) graph at k = 32.
#include <cstdio>

#include "benchkit/measure.h"
#include "core/two_phase_partitioner.h"
#include "graph/in_memory_edge_stream.h"

namespace {

tpsl::StatusOr<tpsl::RunResult> RunVariant(
    const std::vector<tpsl::Edge>& edges,
    const tpsl::TwoPhasePartitioner::Options& options) {
  tpsl::TwoPhasePartitioner partitioner(options);
  tpsl::InMemoryEdgeStream stream(edges);
  tpsl::PartitionConfig config;
  config.num_partitions = 32;
  return tpsl::RunPartitioner(partitioner, stream, config);
}

void Report(const char* label, const tpsl::StatusOr<tpsl::RunResult>& r,
            uint64_t num_edges) {
  if (!r.ok()) {
    std::printf("  %-28s FAILED: %s\n", label, r.status().ToString().c_str());
    return;
  }
  std::printf("  %-28s rf=%7.3f time=%7.4fs prepart=%4.1f%%\n", label,
              r->quality.replication_factor, r->stats.TotalSeconds(),
              100.0 * static_cast<double>(r->stats.prepartitioned_edges) /
                  static_cast<double>(num_edges));
}

}  // namespace

int main() {
  const int shift = tpsl::benchkit::ScaleShift(2);
  tpsl::benchkit::PrintHeader("Ablation: 2PS-L design choices at k=32");

  for (const char* dataset : {"OK", "UK"}) {
    auto edges_or = tpsl::LoadDataset(dataset, shift);
    if (!edges_or.ok()) {
      std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
      return 1;
    }
    const auto& edges = *edges_or;
    std::printf("\n%s (%zu edges)\n", dataset, edges.size());

    std::printf(" volume cap factor sweep:\n");
    for (const double cap : {0.1, 0.25, 0.5, 1.0, 2.0}) {
      tpsl::TwoPhasePartitioner::Options options;
      options.clustering.volume_cap_factor = cap;
      char label[64];
      std::snprintf(label, sizeof(label), "cap=%.2f", cap);
      Report(label, RunVariant(edges, options), edges.size());
    }
    {
      tpsl::TwoPhasePartitioner::Options options;
      options.clustering.enforce_volume_cap = false;
      Report("cap disabled (Hollocou)", RunVariant(edges, options),
             edges.size());
    }

    std::printf(" cluster-to-partition mapping:\n");
    {
      tpsl::TwoPhasePartitioner::Options options;
      Report("Graham LPT (default)", RunVariant(edges, options),
             edges.size());
      options.scheduling =
          tpsl::TwoPhasePartitioner::SchedulingMode::kRoundRobin;
      Report("round robin", RunVariant(edges, options), edges.size());
    }

    std::printf(" scoring function:\n");
    {
      tpsl::TwoPhasePartitioner::Options options;
      Report("with cluster-volume term", RunVariant(edges, options),
             edges.size());
      options.use_cluster_volume_term = false;
      Report("without cluster-volume term", RunVariant(edges, options),
             edges.size());
    }
  }
  std::printf(
      "\nExpected: small caps (0.1-0.5) beat large caps (volume-greedy "
      "migration mixes communities; disabling the cap maximizes the "
      "prepartitioned share but ruins rf AND balance-feasibility); "
      "Graham clearly beats round robin; the cluster-volume scoring "
      "term is roughly neutral at laptop scale.\n");
  return 0;
}

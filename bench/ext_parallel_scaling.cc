// Extension experiment: parallel two-phase partitioning (CuSP-style,
// see the paper's related work). Two regimes:
//  * 2PS-L scoring costs ~3 ns/edge, so the serialized stream reader
//    and sink bound throughput (Amdahl) — parallel workers gain
//    nothing, which is itself the paper's point: linear-time scoring
//    does not need parallelization.
//  * 2PS-HDRF scoring costs O(k) per edge; here the worker pool gives
//    real speedups, at a small quality cost from stale shared state
//    ("staleness ... can lead to lower partitioning quality").
#include <cstdio>

#include "benchkit/measure.h"
#include "core/parallel_two_phase.h"
#include "core/two_phase_partitioner.h"
#include "graph/in_memory_edge_stream.h"

namespace {

/// Phase-2 seconds + rf of one run.
struct Point {
  double rf;
  double total_seconds;
  double phase2_seconds;
};

tpsl::StatusOr<Point> Run(tpsl::Partitioner& partitioner,
                          const std::vector<tpsl::Edge>& edges,
                          uint32_t k) {
  tpsl::InMemoryEdgeStream stream(edges);
  tpsl::PartitionConfig config;
  config.num_partitions = k;
  TPSL_ASSIGN_OR_RETURN(tpsl::RunResult result,
                        tpsl::RunPartitioner(partitioner, stream, config));
  return Point{result.quality.replication_factor,
               result.stats.TotalSeconds(),
               result.stats.phase_seconds.at("partitioning")};
}

}  // namespace

int main() {
  const int shift = tpsl::benchkit::ScaleShift(0);
  auto edges_or = tpsl::LoadDataset("OK", shift);
  if (!edges_or.ok()) {
    std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
    return 1;
  }
  const uint32_t k = 256;  // the expensive-scoring regime

  tpsl::benchkit::PrintHeader("Extension: parallel scaling (OK, k=256)");
  std::printf("%zu edges\n\n", edges_or->size());
  std::printf("%-22s %10s %12s %12s\n", "configuration", "rf", "phase2(s)",
              "speedup");

  // Sequential references for both scoring modes.
  double sequential_hdrf_phase2 = 0;
  {
    tpsl::TwoPhasePartitioner linear;
    auto point = Run(linear, *edges_or, k);
    if (!point.ok()) {
      return 1;
    }
    std::printf("%-22s %10.3f %12.4f %12s\n", "2PS-L sequential",
                point->rf, point->phase2_seconds, "-");

    tpsl::TwoPhasePartitioner::Options options;
    options.scoring = tpsl::TwoPhasePartitioner::ScoringMode::kHdrf;
    tpsl::TwoPhasePartitioner hdrf(options);
    auto hdrf_point = Run(hdrf, *edges_or, k);
    if (!hdrf_point.ok()) {
      return 1;
    }
    sequential_hdrf_phase2 = hdrf_point->phase2_seconds;
    std::printf("%-22s %10.3f %12.4f %12s\n", "2PS-HDRF sequential",
                hdrf_point->rf, hdrf_point->phase2_seconds, "1.00x");
  }

  for (const uint32_t threads : {2u, 4u, 8u, 16u}) {
    tpsl::ParallelTwoPhasePartitioner::Options options;
    options.num_threads = threads;
    options.scoring =
        tpsl::ParallelTwoPhasePartitioner::ScoringMode::kHdrf;
    tpsl::ParallelTwoPhasePartitioner partitioner(options);
    auto point = Run(partitioner, *edges_or, k);
    if (!point.ok()) {
      return 1;
    }
    char label[48], speedup[32];
    std::snprintf(label, sizeof(label), "2PS-HDRF(par) %2u thr", threads);
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  sequential_hdrf_phase2 / point->phase2_seconds);
    std::printf("%-22s %10.3f %12.4f %12s\n", label, point->rf,
                point->phase2_seconds, speedup);
  }
  std::printf(
      "\nExpected: parallel 2PS-HDRF approaches the sequential 2PS-L "
      "time as threads grow (speedup on the O(k) scoring), with rf "
      "within a few percent of sequential 2PS-HDRF. 2PS-L itself gains "
      "nothing from threads — its per-edge work is already cheaper than "
      "the coordination, the whole point of linear-time scoring.\n");
  return 0;
}

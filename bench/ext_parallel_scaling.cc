// Extension experiment: parallel two-phase partitioning on the shared
// execution engine (CuSP-style, see the paper's related work). Two
// regimes:
//  * 2PS-L scoring costs ~3 ns/edge, so the serialized stream reader
//    and sink bound throughput (Amdahl) — parallel workers gain
//    nothing, which is itself the paper's point: linear-time scoring
//    does not need parallelization.
//  * 2PS-HDRF scoring costs O(k) per edge; here the worker pool gives
//    real speedups, at a small quality cost from stale shared state
//    ("staleness ... can lead to lower partitioning quality").
//
// Unlike the paper-figure benches, this sweep is tracked: every
// configuration is emitted as a benchkit JSON record
// (BENCH_parscale_<mode>_t<threads>.json) with the thread count as a
// record dimension, so runs can be diffed with the benchkit comparator
// instead of living in scrollback. Pass --out=DIR to choose where
// (default bench_out); the pinned 2psl_par_* scenarios in the registry
// gate the 1/2/4-thread points in CI.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "benchkit/measure.h"
#include "benchkit/record.h"
#include "core/parallel_two_phase.h"
#include "core/two_phase_partitioner.h"
#include "graph/in_memory_edge_stream.h"

namespace {

/// Quality + run-time of one configuration.
struct Point {
  double rf;
  double total_seconds;
  double phase2_seconds;
  double alpha;
  uint64_t state_bytes;
};

tpsl::StatusOr<Point> Run(tpsl::Partitioner& partitioner,
                          const std::vector<tpsl::Edge>& edges, uint32_t k,
                          uint32_t threads) {
  tpsl::InMemoryEdgeStream stream(edges);
  tpsl::PartitionConfig config;
  config.num_partitions = k;
  config.exec.threads = threads;
  TPSL_ASSIGN_OR_RETURN(tpsl::RunResult result,
                        tpsl::RunPartitioner(partitioner, stream, config));
  return Point{result.quality.replication_factor,
               result.stats.TotalSeconds(),
               result.stats.phase_seconds.at("partitioning"),
               result.quality.measured_alpha, result.stats.state_bytes};
}

tpsl::benchkit::BenchRecord MakeRecord(const std::string& name,
                                       const std::string& partitioner,
                                       uint32_t k, int shift, uint32_t threads,
                                       const Point& point) {
  tpsl::benchkit::BenchRecord record;
  record.scenario = name;
  record.partitioner = partitioner;
  record.dataset = "OK";
  record.k = k;
  record.scale_shift = shift;
  record.seed = 42;
  record.threads = threads;
  record.SetMetric("seconds", point.total_seconds);
  record.SetMetric("phase_seconds/partitioning", point.phase2_seconds);
  record.SetMetric("replication_factor", point.rf);
  record.SetMetric("measured_alpha", point.alpha);
  record.SetMetric("state_bytes", static_cast<double>(point.state_bytes));
  return record;
}

bool EmitRecord(const tpsl::benchkit::BenchRecord& record,
                const std::string& out_dir) {
  const std::string path =
      out_dir + "/" + tpsl::benchkit::RecordFileName(record.scenario);
  const tpsl::Status status = tpsl::benchkit::WriteRecordFile(record, path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = "bench_out";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_dir = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--out=DIR]\n", argv[0]);
      return 2;
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  const int shift = tpsl::benchkit::ScaleShift(0);
  auto edges_or = tpsl::LoadDataset("OK", shift);
  if (!edges_or.ok()) {
    std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
    return 1;
  }
  const uint32_t k = 256;  // the expensive-scoring regime

  tpsl::benchkit::PrintHeader("Extension: parallel scaling (OK, k=256)");
  std::printf("%zu edges; records -> %s\n\n", edges_or->size(),
              out_dir.c_str());
  std::printf("%-22s %10s %12s %12s\n", "configuration", "rf", "phase2(s)",
              "speedup");

  // Sequential references for both scoring modes.
  double sequential_hdrf_phase2 = 0;
  {
    tpsl::TwoPhasePartitioner linear;
    auto point = Run(linear, *edges_or, k, /*threads=*/1);
    if (!point.ok()) {
      return 1;
    }
    std::printf("%-22s %10.3f %12.4f %12s\n", "2PS-L sequential", point->rf,
                point->phase2_seconds, "-");
    if (!EmitRecord(MakeRecord("parscale_2psl_seq", "2PS-L", k, shift, 1,
                               *point),
                    out_dir)) {
      return 1;
    }

    tpsl::TwoPhasePartitioner::Options options;
    options.scoring = tpsl::TwoPhasePartitioner::ScoringMode::kHdrf;
    tpsl::TwoPhasePartitioner hdrf(options);
    auto hdrf_point = Run(hdrf, *edges_or, k, /*threads=*/1);
    if (!hdrf_point.ok()) {
      return 1;
    }
    sequential_hdrf_phase2 = hdrf_point->phase2_seconds;
    std::printf("%-22s %10.3f %12.4f %12s\n", "2PS-HDRF sequential",
                hdrf_point->rf, hdrf_point->phase2_seconds, "1.00x");
    if (!EmitRecord(MakeRecord("parscale_2pshdrf_seq", "2PS-HDRF", k, shift,
                               1, *hdrf_point),
                    out_dir)) {
      return 1;
    }
  }

  for (const uint32_t threads : {1u, 2u, 4u, 8u, 16u}) {
    tpsl::ParallelTwoPhasePartitioner::Options options;
    options.scoring = tpsl::ParallelTwoPhasePartitioner::ScoringMode::kHdrf;
    tpsl::ParallelTwoPhasePartitioner partitioner(options);
    auto point = Run(partitioner, *edges_or, k, threads);
    if (!point.ok()) {
      return 1;
    }
    char label[48], speedup[32];
    std::snprintf(label, sizeof(label), "2PS-HDRF(par) %2u thr", threads);
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  sequential_hdrf_phase2 / point->phase2_seconds);
    std::printf("%-22s %10.3f %12.4f %12s\n", label, point->rf,
                point->phase2_seconds, speedup);
    if (!EmitRecord(MakeRecord("parscale_2pshdrf_par_t" +
                                   std::to_string(threads),
                               "2PS-HDRF(par)", k, shift, threads, *point),
                    out_dir)) {
      return 1;
    }
  }
  std::printf(
      "\nExpected: parallel 2PS-HDRF approaches the sequential 2PS-L "
      "time as threads grow (speedup on the O(k) scoring), with rf "
      "within a few percent of sequential 2PS-HDRF. 2PS-L itself gains "
      "nothing from threads — its per-edge work is already cheaper than "
      "the coordination, the whole point of linear-time scoring.\n");
  return 0;
}

// Extension experiment reproducing the paper's *premise* (§I, citing
// Bourse et al., KDD'14): on skewed power-law graphs, edge
// partitioning (vertex cut) yields lower communication cost than
// vertex partitioning (edge cut). Compares FENNEL vertex partitioning
// against 2PS-L edge partitioning on a skewed social graph and a
// low-skew uniform graph, using the per-algorithm communication
// proxy: cut edges (vertex partitioning) vs mirror count Σ(replicas−1)
// (edge partitioning), both normalized per edge.
#include <cstdio>

#include "baselines/fennel.h"
#include "benchkit/measure.h"
#include "core/two_phase_partitioner.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"

namespace {

struct Row {
  double vertex_cut_fraction;
  double edge_mirrors_per_edge;
};

tpsl::StatusOr<Row> Compare(const std::vector<tpsl::Edge>& edges,
                            uint32_t k) {
  Row row;
  // Vertex partitioning: FENNEL.
  const tpsl::CsrGraph graph = tpsl::CsrGraph::FromEdges(edges);
  tpsl::FennelConfig fennel_config;
  fennel_config.num_partitions = k;
  TPSL_ASSIGN_OR_RETURN(tpsl::VertexPartitioning vertex_result,
                        tpsl::FennelPartition(graph, fennel_config));
  row.vertex_cut_fraction = vertex_result.CutFraction();

  // Edge partitioning: 2PS-L. Mirrors per edge = (Σ replicas − |V|) /
  // |E|.
  tpsl::TwoPhasePartitioner partitioner;
  tpsl::InMemoryEdgeStream stream(edges);
  tpsl::PartitionConfig config;
  config.num_partitions = k;
  TPSL_ASSIGN_OR_RETURN(tpsl::RunResult edge_result,
                        tpsl::RunPartitioner(partitioner, stream, config));
  const double mirrors = (edge_result.quality.replication_factor - 1.0) *
                         static_cast<double>(
                             edge_result.quality.num_covered_vertices);
  row.edge_mirrors_per_edge = mirrors / static_cast<double>(edges.size());
  return row;
}

}  // namespace

int main() {
  const int shift = tpsl::benchkit::ScaleShift(1);

  tpsl::benchkit::PrintHeader(
      "Extension: vertex partitioning (FENNEL) vs edge partitioning "
      "(2PS-L)");
  std::printf("%-22s %6s %18s %20s\n", "graph", "k", "cut-edges/|E|",
              "mirrors/|E| (edge)");

  tpsl::SocialNetworkConfig social;
  social.num_vertices = tpsl::VertexId{1} << (15 - shift);
  social.hub_fraction = 0.5;  // strong skew: the paper's regime
  const auto skewed = tpsl::GenerateSocialNetwork(social);

  tpsl::ErdosRenyiConfig uniform;
  uniform.num_vertices = tpsl::VertexId{1} << (15 - shift);
  uniform.num_edges = uint64_t{6} << (15 - shift);
  const auto flat = tpsl::GenerateErdosRenyi(uniform);

  for (const uint32_t k : {16u, 64u}) {
    auto skew_row = Compare(skewed, k);
    auto flat_row = Compare(flat, k);
    if (!skew_row.ok() || !flat_row.ok()) {
      std::fprintf(stderr, "comparison failed\n");
      return 1;
    }
    std::printf("%-22s %6u %18.3f %20.3f\n", "social (power-law)", k,
                skew_row->vertex_cut_fraction,
                skew_row->edge_mirrors_per_edge);
    std::printf("%-22s %6u %18.3f %20.3f\n", "uniform (ER)", k,
                flat_row->vertex_cut_fraction,
                flat_row->edge_mirrors_per_edge);
  }
  std::printf(
      "\nExpected (paper premise, Bourse et al.): on the power-law graph "
      "the edge partitioner's communication proxy beats the vertex "
      "partitioner's at moderate k, and both methods degrade on the "
      "structure-free uniform graph; the skewed graph is where the "
      "vertex-cut advantage concentrates (hubs are replicated instead "
      "of having all their edges cut).\n");
  return 0;
}

// Reproduces paper Fig. 5: relative run-time of the 2PS-L phases
// (degree computation, streaming clustering, partitioning) at k = 32
// on every dataset. Paper: degree 7-20%, clustering 16-22%,
// partitioning 58-77%.
#include <cstdio>

#include "benchkit/measure.h"

int main() {
  using tpsl::benchkit::Measure;
  const int shift = tpsl::benchkit::ScaleShift(2);

  tpsl::benchkit::PrintHeader("Fig. 5: 2PS-L phase breakdown at k=32");
  std::printf("%-8s %10s %12s %14s %12s\n", "dataset", "degree%",
              "clustering%", "partitioning%", "total(s)");
  for (const tpsl::DatasetSpec& spec : tpsl::AllDatasets()) {
    auto m = Measure("2PS-L", spec.name, 32, shift);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    const double total = m->stats.TotalSeconds();
    const auto share = [&](const char* phase) {
      const auto it = m->stats.phase_seconds.find(phase);
      return it == m->stats.phase_seconds.end()
                 ? 0.0
                 : 100.0 * it->second / total;
    };
    std::printf("%-8s %10.1f %12.1f %14.1f %12.4f\n", spec.name.c_str(),
                share("degree"), share("clustering"), share("partitioning"),
                total);
  }
  std::printf(
      "\nPaper shape check: partitioning dominates (>50%%), degree and "
      "clustering are minor; web graphs spend relatively less time in "
      "partitioning than social graphs.\n");
  return 0;
}

#ifndef TPSL_BENCH_BENCH_UTIL_H_
#define TPSL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "graph/datasets.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/runner.h"
#include "util/logging.h"

namespace tpsl {
namespace bench {

/// All experiment binaries shrink the paper's graphs by
/// 2^TPSL_SCALE_SHIFT (environment variable) relative to the repo's
/// default benchmark size; the default keeps every binary in the
/// seconds-to-minutes range on a laptop.
inline int ScaleShift(int default_shift) {
  const char* env = std::getenv("TPSL_SCALE_SHIFT");
  if (env != nullptr) {
    return std::atoi(env);
  }
  return default_shift;
}

/// One partitioning measurement: quality + run-time as the paper
/// reports them (run-time is the partitioner's own phase accounting;
/// harness overheads like metric computation are excluded).
struct Measurement {
  std::string partitioner;
  std::string dataset;
  uint32_t k = 0;
  double replication_factor = 0.0;
  double seconds = 0.0;
  double measured_alpha = 0.0;
  uint64_t state_bytes = 0;
  PartitionStats stats;
};

inline StatusOr<Measurement> MeasureOnEdges(const std::string& partitioner,
                                            const std::string& dataset,
                                            const std::vector<Edge>& edges,
                                            uint32_t k) {
  TPSL_ASSIGN_OR_RETURN(std::unique_ptr<Partitioner> p,
                        MakePartitioner(partitioner));
  InMemoryEdgeStream stream(edges);
  PartitionConfig config;
  config.num_partitions = k;
  TPSL_ASSIGN_OR_RETURN(RunResult result, RunPartitioner(*p, stream, config));

  Measurement m;
  m.partitioner = partitioner;
  m.dataset = dataset;
  m.k = k;
  m.replication_factor = result.quality.replication_factor;
  m.seconds = result.stats.TotalSeconds();
  m.measured_alpha = result.quality.measured_alpha;
  m.state_bytes = result.stats.state_bytes;
  m.stats = result.stats;
  return m;
}

inline StatusOr<Measurement> Measure(const std::string& partitioner,
                                     const std::string& dataset, uint32_t k,
                                     int scale_shift) {
  TPSL_ASSIGN_OR_RETURN(std::vector<Edge> edges,
                        LoadDataset(dataset, scale_shift));
  return MeasureOnEdges(partitioner, dataset, edges, k);
}

/// Prints a header like the paper's experiment tables.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRowHeader() {
  std::printf("%-10s %-8s %6s %10s %12s %10s %14s\n", "partitioner",
              "dataset", "k", "rf", "time(s)", "alpha", "state(bytes)");
}

inline void PrintRow(const Measurement& m) {
  std::printf("%-10s %-8s %6u %10.3f %12.4f %10.3f %14llu\n",
              m.partitioner.c_str(), m.dataset.c_str(), m.k,
              m.replication_factor, m.seconds, m.measured_alpha,
              static_cast<unsigned long long>(m.state_bytes));
}

}  // namespace bench
}  // namespace tpsl

#endif  // TPSL_BENCH_BENCH_UTIL_H_

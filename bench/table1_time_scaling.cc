// Empirically verifies the time-complexity claims of paper Table I:
//  * 2PS-L / DBH run-time is linear in |E| and independent of k.
//  * HDRF / Greedy run-time is linear in |E| * k.
// Prints run-times for doubling |E| at fixed k, and doubling k at
// fixed |E|, with growth ratios.
#include <cstdio>
#include <vector>

#include "benchkit/measure.h"
#include "graph/generators.h"

namespace {

std::vector<tpsl::Edge> Rmat(uint32_t scale) {
  tpsl::RmatConfig config;
  config.scale = scale;
  config.edge_factor = 8;
  return tpsl::GenerateRmat(config);
}

}  // namespace

int main() {
  using tpsl::benchkit::MeasureOnEdges;
  const int shift = tpsl::benchkit::ScaleShift(0);
  // Clamp like graph/datasets.cc: large shifts floor at scale 10
  // instead of wrapping the unsigned subtraction.
  const uint32_t base_scale = shift < 5 ? static_cast<uint32_t>(15 - shift) : 10;

  tpsl::benchkit::PrintHeader("Table I (empirical): run-time vs |E| at k=32");
  std::printf("%-10s %12s %14s %12s %8s\n", "partitioner", "scale", "|E|",
              "time(s)", "ratio");
  for (const char* name : {"2PS-L", "HDRF", "DBH", "Greedy"}) {
    double previous = 0;
    for (uint32_t scale = base_scale; scale <= base_scale + 2; ++scale) {
      const auto edges = Rmat(scale);
      auto m = MeasureOnEdges(name, "rmat", edges, 32);
      if (!m.ok()) {
        std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
        return 1;
      }
      std::printf("%-10s %12u %14zu %12.4f %8.2f\n", name, scale,
                  edges.size(), m->seconds,
                  previous > 0 ? m->seconds / previous : 0.0);
      previous = m->seconds;
    }
  }
  std::printf("Expected: ratio ~2.0 for all (doubling |E| doubles time).\n");

  tpsl::benchkit::PrintHeader("Table I (empirical): run-time vs k at fixed |E|");
  std::printf("%-10s %6s %12s %8s\n", "partitioner", "k", "time(s)", "ratio");
  const auto edges = Rmat(base_scale + 1);
  for (const char* name : {"2PS-L", "HDRF", "DBH", "Greedy"}) {
    double previous = 0;
    for (const uint32_t k : {16u, 64u, 256u}) {
      auto m = MeasureOnEdges(name, "rmat", edges, k);
      if (!m.ok()) {
        std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
        return 1;
      }
      std::printf("%-10s %6u %12.4f %8.2f\n", name, k, m->seconds,
                  previous > 0 ? m->seconds / previous : 0.0);
      previous = m->seconds;
    }
  }
  std::printf(
      "Expected: 2PS-L and DBH ratios ~1.0 (k-independent); HDRF and "
      "Greedy ratios ~4.0 (O(|E|*k)).\n");
  return 0;
}

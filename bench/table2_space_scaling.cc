// Empirically verifies the space-complexity claims of paper Table II:
// stateful streaming partitioners (2PS-L, HDRF) hold O(|V|*k) state;
// DBH O(|V|); Grid O(k); in-memory partitioners (NE) >= O(|E|).
// State bytes are the partitioners' own accounting of peak algorithm
// state (replication tables, degree arrays, adjacency, ...).
#include <cstdio>

#include "benchkit/measure.h"
#include "graph/generators.h"

namespace {

std::vector<tpsl::Edge> Rmat(uint32_t scale, uint32_t edge_factor) {
  tpsl::RmatConfig config;
  config.scale = scale;
  config.edge_factor = edge_factor;
  return tpsl::GenerateRmat(config);
}

}  // namespace

int main() {
  using tpsl::benchkit::MeasureOnEdges;
  const int shift = tpsl::benchkit::ScaleShift(0);
  // Clamp like graph/datasets.cc: large shifts floor at scale 10
  // instead of wrapping the unsigned subtraction.
  const uint32_t scale = shift < 5 ? static_cast<uint32_t>(15 - shift) : 10;

  tpsl::benchkit::PrintHeader("Table II (empirical): state bytes vs k");
  std::printf("%-10s %6s %14s\n", "partitioner", "k", "state(bytes)");
  const auto edges = Rmat(scale, 8);
  for (const char* name : {"2PS-L", "HDRF", "DBH", "Grid", "NE"}) {
    for (const uint32_t k : {8u, 32u, 128u}) {
      auto m = MeasureOnEdges(name, "rmat", edges, k);
      if (!m.ok()) {
        std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
        return 1;
      }
      std::printf("%-10s %6u %14llu\n", name, k,
                  static_cast<unsigned long long>(m->state_bytes));
    }
  }
  std::printf(
      "Expected: 2PS-L/HDRF state grows with k (O(|V|*k) bit matrix); "
      "DBH/Grid/NE are k-independent.\n");

  tpsl::benchkit::PrintHeader(
      "Table II (empirical): state bytes vs |E| at fixed |V|, k=32");
  std::printf("%-10s %14s %14s\n", "partitioner", "|E|", "state(bytes)");
  for (const char* name : {"2PS-L", "HDRF", "NE"}) {
    for (const uint32_t edge_factor : {4u, 8u, 16u}) {
      const auto sized_edges = Rmat(scale, edge_factor);
      auto m = MeasureOnEdges(name, "rmat", sized_edges, 32);
      if (!m.ok()) {
        std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
        return 1;
      }
      std::printf("%-10s %14zu %14llu\n", name, sized_edges.size(),
                  static_cast<unsigned long long>(m->state_bytes));
    }
  }
  std::printf(
      "Expected: streaming state independent of |E|; NE state grows "
      "linearly with |E|.\n");
  return 0;
}

// Extension experiment (beyond the paper): the paper's conclusion
// names hypergraph generalization as future work. 2PS-H (the
// two-phase linear-time scheme on hypergraphs) vs streaming min-max
// (Alistarh et al.) vs hashing on planted hypergraphs, across k.
// Expected: 2PS-H beats hashing clearly, is competitive with min-max
// on quality, and its run-time stays flat in k while min-max's grows.
#include <cstdio>

#include "benchkit/measure.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/hypergraph_partitioner.h"
#include "util/timer.h"

int main() {
  const int shift = tpsl::benchkit::ScaleShift(0);

  tpsl::PlantedHypergraphConfig graph_config;
  graph_config.num_vertices = tpsl::VertexId{1} << (16 - shift);
  graph_config.num_hyperedges = uint64_t{1} << (18 - shift);
  graph_config.num_communities = 1u << (16 - shift - 5);
  graph_config.intra_fraction = 0.9;
  const tpsl::Hypergraph hypergraph =
      tpsl::GeneratePlantedHypergraph(graph_config);

  tpsl::benchkit::PrintHeader("Extension: 2PS-H hypergraph partitioning");
  std::printf("hypergraph: %zu hyperedges, %llu pins, %u vertices\n\n",
              hypergraph.edges.size(),
              static_cast<unsigned long long>(hypergraph.NumPins()),
              hypergraph.NumVertices());
  std::printf("%-10s %6s %10s %12s %10s\n", "method", "k", "rf", "time(s)",
              "alpha");

  for (const uint32_t k : {8u, 32u, 128u}) {
    tpsl::HypergraphPartitionConfig config;
    config.num_partitions = k;

    struct Method {
      const char* name;
      tpsl::StatusOr<std::vector<tpsl::PartitionId>> (*run)(
          const tpsl::Hypergraph&, const tpsl::HypergraphPartitionConfig&);
    };
    const Method methods[] = {
        {"Hash", &tpsl::HashPartitionHypergraph},
        {"MinMax", &tpsl::MinMaxPartitionHypergraph},
        {"2PS-H",
         [](const tpsl::Hypergraph& hg,
            const tpsl::HypergraphPartitionConfig& cfg) {
           return tpsl::TwoPhasePartitionHypergraph(hg, cfg);
         }},
    };
    for (const Method& method : methods) {
      tpsl::WallTimer timer;
      auto assignment = method.run(hypergraph, config);
      const double seconds = timer.ElapsedSeconds();
      if (!assignment.ok()) {
        std::fprintf(stderr, "%s failed\n", method.name);
        return 1;
      }
      const auto quality =
          tpsl::ComputeHypergraphQuality(hypergraph, *assignment, k);
      std::printf("%-10s %6u %10.3f %12.4f %10.3f\n", method.name, k,
                  quality.replication_factor, seconds,
                  quality.measured_alpha);
    }
  }
  std::printf(
      "\nExpected: 2PS-H rf well below Hash and near MinMax; 2PS-H time "
      "flat in k, MinMax time linear in k.\n");
  return 0;
}

// Reproduces paper Table V: 2PS-L partitioning time when the graph
// must be re-read from storage on every streaming pass (page cache
// dropped between passes). Physical devices are replaced by the
// bandwidth-accounting ThrottledEdgeStream (DESIGN.md §4) using the
// paper's fio-profiled speeds: SSD 938 MB/s, HDD 158 MB/s. The
// reported time for a device is compute time + simulated I/O time (a
// conservative no-overlap model, as in a single-threaded reader).
#include <cstdio>
#include <string>

#include "baselines/registry.h"
#include "benchkit/measure.h"
#include "io/edge_file.h"
#include "io/throttled_edge_stream.h"

int main() {
  const int shift = tpsl::benchkit::ScaleShift(2);

  tpsl::benchkit::PrintHeader("Table V: partitioning time by storage device");
  std::printf("%-8s %12s %12s %10s %12s %10s\n", "dataset", "pagecache(s)",
              "ssd(s)", "ssd-pen%", "hdd(s)", "hdd-pen%");

  for (const tpsl::DatasetSpec& spec : tpsl::AllDatasets()) {
    auto edges_or = tpsl::LoadDataset(spec.name, shift);
    if (!edges_or.ok()) {
      std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
      return 1;
    }
    // Staged in the compressed block format: the simulated device
    // then moves the on-disk (compressed) bytes, as a real deployment
    // would.
    const std::string path = "/tmp/tpsl_table5_" + spec.name + ".bin";
    if (!tpsl::io::WriteEdgeFile(path, *edges_or,
                                 tpsl::io::EdgeFileFormat::kCompressedBlocks)
             .ok()) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }

    double compute_seconds = 0;
    double io_seconds[2] = {0, 0};  // SSD, HDD
    const tpsl::StorageProfile profiles[] = {tpsl::kSsdProfile,
                                             tpsl::kHddProfile};
    for (int device = 0; device < 2; ++device) {
      auto file_or = tpsl::io::OpenEdgeFile(path);
      if (!file_or.ok()) {
        std::fprintf(stderr, "%s\n", file_or.status().ToString().c_str());
        return 1;
      }
      tpsl::ThrottledEdgeStream throttled(file_or->get(), profiles[device]);

      auto partitioner_or = tpsl::MakePartitioner("2PS-L");
      tpsl::PartitionConfig config;
      config.num_partitions = 32;
      tpsl::CountingSink sink(32);
      tpsl::PartitionStats stats;
      const tpsl::Status status =
          (*partitioner_or)->Partition(throttled, config, sink, &stats);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      compute_seconds = stats.TotalSeconds();
      io_seconds[device] = throttled.SimulatedIoSeconds();
    }
    std::remove(path.c_str());

    const double ssd = compute_seconds + io_seconds[0];
    const double hdd = compute_seconds + io_seconds[1];
    std::printf("%-8s %12.3f %12.3f %9.0f%% %12.3f %9.0f%%\n",
                spec.name.c_str(), compute_seconds, ssd,
                100.0 * (ssd - compute_seconds) / compute_seconds, hdd,
                100.0 * (hdd - compute_seconds) / compute_seconds);
  }
  std::printf(
      "\nPaper shape check: SSD adds a modest penalty; HDD penalties are "
      "several times larger (paper: +7-40%% SSD, +54-308%% HDD).\n");
  return 0;
}

// Google-benchmark microbenchmarks of the hot kernels: scoring
// functions, streaming clustering throughput, replication-table
// updates, and edge-stream delivery. These quantify the per-edge
// constant factors behind the O(|E|) vs O(|E|*k) distinction of paper
// Table I.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/scoring.h"
#include "core/streaming_clustering.h"
#include "graph/degrees.h"
#include "graph/generators.h"
#include "graph/in_memory_edge_stream.h"
#include "partition/replication_table.h"

namespace tpsl {
namespace {

std::vector<Edge> BenchGraph() {
  RmatConfig config;
  config.scale = 14;
  config.edge_factor = 8;
  return GenerateRmat(config);
}

void BM_TwopsScoreTwoCandidates(benchmark::State& state) {
  ReplicationTable replicas(1024, 32);
  replicas.Set(1, 3);
  replicas.Set(2, 7);
  for (auto _ : state) {
    double total = 0;
    total += TwopsScore(replicas, 1, 2, 10, 20, 100, 200, true, false, 3);
    total += TwopsScore(replicas, 1, 2, 10, 20, 100, 200, false, true, 7);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_TwopsScoreTwoCandidates);

void BM_HdrfScoreAllPartitions(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  ReplicationTable replicas(1024, k);
  replicas.Set(1, 0);
  std::vector<uint64_t> loads(k, 100);
  for (auto _ : state) {
    double best = -1;
    for (PartitionId p = 0; p < k; ++p) {
      const double score =
          HdrfReplicationScore(replicas.Test(1, p), replicas.Test(2, p), 10,
                               20) +
          HdrfBalanceScore(loads[p], 200, 100, 1.1);
      if (score > best) {
        best = score;
      }
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_HdrfScoreAllPartitions)->Arg(4)->Arg(32)->Arg(256);

void BM_StreamingClusteringPass(benchmark::State& state) {
  const auto edges = BenchGraph();
  InMemoryEdgeStream stream(edges);
  auto degrees = ComputeDegrees(stream);
  for (auto _ : state) {
    ClusteringConfig config;
    auto clustering = StreamingClustering(stream, *degrees, 32, config);
    benchmark::DoNotOptimize(clustering);
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_StreamingClusteringPass);

void BM_DegreeComputation(benchmark::State& state) {
  const auto edges = BenchGraph();
  InMemoryEdgeStream stream(edges);
  for (auto _ : state) {
    auto degrees = ComputeDegrees(stream);
    benchmark::DoNotOptimize(degrees);
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_DegreeComputation);

void BM_ReplicationTableSetTest(benchmark::State& state) {
  ReplicationTable table(1 << 16, 64);
  uint64_t i = 0;
  for (auto _ : state) {
    const VertexId v = static_cast<VertexId>(i % (1 << 16));
    const PartitionId p = static_cast<PartitionId>(i % 64);
    table.Set(v, p);
    benchmark::DoNotOptimize(table.Test(v, p));
    ++i;
  }
}
BENCHMARK(BM_ReplicationTableSetTest);

void BM_EdgeStreamDelivery(benchmark::State& state) {
  const auto edges = BenchGraph();
  InMemoryEdgeStream stream(edges);
  for (auto _ : state) {
    uint64_t checksum = 0;
    auto status = ForEachEdge(stream, [&checksum](const Edge& e) {
      checksum += e.first ^ e.second;
    });
    benchmark::DoNotOptimize(checksum);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_EdgeStreamDelivery);

}  // namespace
}  // namespace tpsl

BENCHMARK_MAIN();

// Reproduces paper Fig. 8: total 2PS-L run-time (normalized to
// single-pass clustering) vs the number of streaming clustering passes
// (1..8) at k = 32. Paper: 8 passes roughly double total run-time,
// because clustering is only a minor share of the total (Fig. 5).
#include <cstdio>

#include "benchkit/measure.h"
#include "core/two_phase_partitioner.h"
#include "graph/in_memory_edge_stream.h"

int main() {
  const int shift = tpsl::benchkit::ScaleShift(2);

  tpsl::benchkit::PrintHeader(
      "Fig. 8: normalized total run-time vs clustering passes, k=32");
  std::printf("%-8s", "dataset");
  for (int pass = 1; pass <= 8; ++pass) {
    std::printf(" %8s%d", "pass", pass);
  }
  std::printf("\n");

  for (const tpsl::DatasetSpec& spec : tpsl::RestreamingStudyDatasets()) {
    auto edges_or = tpsl::LoadDataset(spec.name, shift);
    if (!edges_or.ok()) {
      std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s", spec.name.c_str());
    double baseline = 0;
    for (uint32_t passes = 1; passes <= 8; ++passes) {
      tpsl::TwoPhasePartitioner::Options options;
      options.clustering.num_passes = passes;
      tpsl::TwoPhasePartitioner partitioner(options);
      tpsl::InMemoryEdgeStream stream(*edges_or);
      tpsl::PartitionConfig config;
      config.num_partitions = 32;
      tpsl::CountingSink sink(32);
      tpsl::PartitionStats stats;
      const tpsl::Status status =
          partitioner.Partition(stream, config, sink, &stats);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      const double seconds = stats.TotalSeconds();
      if (passes == 1) {
        baseline = seconds;
      }
      std::printf(" %9.3f", seconds / baseline);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: run-time grows sub-linearly in passes "
      "(~2x at 8 passes), never ~8x.\n");
  return 0;
}

// Reproduces paper Fig. 6: the fraction of edges assigned by
// pre-partitioning (both endpoints' clusters co-located) vs the
// scoring pass, at k = 32, per dataset. Paper: pre-partitioning
// dominates on web graphs; social graphs have a larger "remaining"
// share.
#include <cstdio>

#include "benchkit/measure.h"

int main() {
  using tpsl::benchkit::Measure;
  const int shift = tpsl::benchkit::ScaleShift(2);

  tpsl::benchkit::PrintHeader("Fig. 6: prepartitioned vs remaining at k=32");
  std::printf("%-8s %-8s %16s %12s %14s\n", "dataset", "type",
              "prepartitioned", "remaining", "prepart-share");
  for (const tpsl::DatasetSpec& spec : tpsl::AllDatasets()) {
    auto m = Measure("2PS-L", spec.name, 32, shift);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    const uint64_t pre = m->stats.prepartitioned_edges;
    const uint64_t rem = m->stats.remaining_edges;
    std::printf("%-8s %-8s %16llu %12llu %13.1f%%\n", spec.name.c_str(),
                spec.kind == tpsl::DatasetSpec::Kind::kWeb ? "web" : "social",
                static_cast<unsigned long long>(pre),
                static_cast<unsigned long long>(rem),
                100.0 * static_cast<double>(pre) /
                    static_cast<double>(pre + rem));
  }
  std::printf(
      "\nPaper shape check: web graphs (strong communities) have a higher "
      "prepartitioned share than social graphs.\n");
  return 0;
}

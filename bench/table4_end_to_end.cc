// Reproduces paper Table IV: end-to-end time (partitioning + 100
// PageRank iterations) on OK and WI at k = 32 for 2PS-L, 2PS-HDRF,
// HDRF, DBH, SNE, HEP-1. The Spark/GraphX cluster is replaced by the
// distributed-processing simulator (DESIGN.md §4): PageRank values are
// computed for real; processing time is modeled as compute + replica
// synchronization, so it grows with the replication factor exactly as
// in the paper.
#include <cstdio>
#include <string>

#include "baselines/registry.h"
#include "benchkit/measure.h"
#include "graph/in_memory_edge_stream.h"
#include "procsim/distributed_pagerank.h"

int main() {
  const int shift = tpsl::benchkit::ScaleShift(2);

  tpsl::benchkit::PrintHeader(
      "Table IV: partitioning + PageRank(100) end-to-end, k=32");
  std::printf("%-10s %-8s %8s %14s %14s %12s\n", "partitioner", "dataset",
              "rf", "partition(s)", "pagerank(s)", "total(s)");

  for (const char* dataset : {"OK", "WI"}) {
    auto edges_or = tpsl::LoadDataset(dataset, shift);
    if (!edges_or.ok()) {
      std::fprintf(stderr, "%s\n", edges_or.status().ToString().c_str());
      return 1;
    }
    for (const char* name :
         {"2PS-L", "2PS-HDRF", "HDRF", "DBH", "SNE", "HEP-1"}) {
      auto partitioner_or = tpsl::MakePartitioner(name);
      if (!partitioner_or.ok()) {
        std::fprintf(stderr, "%s\n",
                     partitioner_or.status().ToString().c_str());
        return 1;
      }
      tpsl::InMemoryEdgeStream stream(*edges_or);
      tpsl::PartitionConfig config;
      config.num_partitions = 32;
      tpsl::RunOptions options;
      options.keep_partitions = true;
      options.validate = false;  // DBH does not enforce the cap
      auto run_or =
          tpsl::RunPartitioner(**partitioner_or, stream, config, options);
      if (!run_or.ok()) {
        std::fprintf(stderr, "%s: %s\n", name,
                     run_or.status().ToString().c_str());
        return 1;
      }

      tpsl::PageRankConfig pagerank;
      pagerank.iterations = 100;
      auto sim_or = tpsl::SimulateDistributedPageRank(run_or->partitions,
                                                      pagerank, {});
      if (!sim_or.ok()) {
        std::fprintf(stderr, "%s\n", sim_or.status().ToString().c_str());
        return 1;
      }
      const double partition_seconds = run_or->stats.TotalSeconds();
      std::printf("%-10s %-8s %8.2f %14.3f %14.3f %12.3f\n", name, dataset,
                  run_or->quality.replication_factor, partition_seconds,
                  sim_or->simulated_seconds,
                  partition_seconds + sim_or->simulated_seconds);
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: DBH loses end-to-end despite the fastest "
      "partitioning (its high rf inflates PageRank sync traffic); 2PS-L "
      "beats the expensive stateful partitioners (HDRF, 2PS-HDRF) on "
      "total time. Note: at laptop scale the in-memory phases of "
      "HEP-1/SNE are disproportionately cheap compared to the paper's "
      "billion-edge runs, so their partitioning-time disadvantage "
      "shrinks here (see EXPERIMENTS.md).\n");
  return 0;
}

// Reproduces paper Fig. 2: replication factor and run-time of 2PS-L
// vs HDRF (stateful) vs DBH (stateless) on the OK graph for
// k ∈ {4, 32, 128, 256}. Expected shape: HDRF run-time grows linearly
// with k while 2PS-L and DBH stay flat; 2PS-L has the best RF.
#include <cstdio>

#include "benchkit/measure.h"

int main() {
  using tpsl::benchkit::Measure;
  const int shift = tpsl::benchkit::ScaleShift(1);

  tpsl::benchkit::PrintHeader("Fig. 2: motivation on OK graph");
  tpsl::benchkit::PrintRowHeader();
  for (const uint32_t k : {4u, 32u, 128u, 256u}) {
    for (const char* name : {"2PS-L", "HDRF", "DBH"}) {
      auto m = Measure(name, "OK", k, shift);
      if (!m.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", name,
                     m.status().ToString().c_str());
        return 1;
      }
      tpsl::benchkit::PrintRow(*m);
    }
  }
  std::printf(
      "\nPaper shape check: HDRF time grows ~linearly in k; 2PS-L and DBH "
      "are k-independent;\n2PS-L has the lowest replication factor at "
      "every k.\n");
  return 0;
}

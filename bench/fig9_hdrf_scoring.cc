// Reproduces paper Fig. 9: 2PS-HDRF (HDRF scoring over all k
// partitions in phase 2) vs 2PS-L, normalized to 2PS-L, on OK, IT, TW,
// FR for k ∈ {4, 32, 128, 256}. Paper: 2PS-HDRF improves RF by up to
// 50% but its run-time grows with k (up to ~12x at k=256).
#include <cstdio>

#include "benchkit/measure.h"

int main() {
  using tpsl::benchkit::Measure;
  const int shift = tpsl::benchkit::ScaleShift(2);

  tpsl::benchkit::PrintHeader("Fig. 9: 2PS-HDRF normalized to 2PS-L");
  std::printf("%-8s %6s %14s %14s\n", "dataset", "k", "norm-rf",
              "norm-time");
  for (const tpsl::DatasetSpec& spec : tpsl::RestreamingStudyDatasets()) {
    for (const uint32_t k : {4u, 32u, 128u, 256u}) {
      auto linear = Measure("2PS-L", spec.name, k, shift);
      auto hdrf = Measure("2PS-HDRF", spec.name, k, shift);
      if (!linear.ok() || !hdrf.ok()) {
        std::fprintf(stderr, "measurement failed\n");
        return 1;
      }
      std::printf("%-8s %6u %14.3f %14.3f\n", spec.name.c_str(), k,
                  hdrf->replication_factor / linear->replication_factor,
                  hdrf->seconds / linear->seconds);
    }
  }
  std::printf(
      "\nPaper shape check: norm-rf <= 1 (HDRF scoring helps quality); "
      "norm-time ~1 at k=4 and grows with k.\n");
  return 0;
}
